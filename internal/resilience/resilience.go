// Package resilience hardens the repository's long-running training and
// evaluation loops against the failures that otherwise discard hours of
// simulator-scored REINFORCE work: a panic in one worker goroutine, a
// transient error that a retry would absorb, or a stage that silently
// hangs. It wraps the internal/parallel fan-out helpers with panic
// isolation, provides retry-with-backoff and a deadline watchdog, and is
// dependency-free like the packages it protects.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/parallel"
)

// PanicError is a panic recovered inside a worker, carrying the payload
// and the stack of the panicking goroutine.
type PanicError struct {
	// Index is the work-item index whose function panicked.
	Index int
	// Value is the value passed to panic().
	Value any
	// Stack is the stack trace captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// ForEach runs fn(i) for i in [0, n) on the parallel worker pool,
// recovering panics so one crashing worker cannot take down the process or
// lose its siblings' results: every index is attempted regardless of other
// indices' failures. The returned error joins every panic and error in
// index order (nil when all succeeded).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	parallel.ForEach(n, workers, func(i int) {
		errs[i] = protect(i, func() error { return fn(i) })
	})
	return errors.Join(errs...)
}

// ForEachWorker is ForEach with a stable worker id: calls sharing a
// worker id run sequentially on one goroutine (see
// parallel.ForEachWorker), so fn may drive per-worker state such as a
// model replica. Panics are isolated per index exactly like ForEach.
func ForEachWorker(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	parallel.ForEachWorker(n, workers, func(w, i int) {
		errs[i] = protect(i, func() error { return fn(w, i) })
	})
	return errors.Join(errs...)
}

// Map applies fn to each index in parallel with panic isolation and
// collects the results in order. Slots whose fn panicked or errored hold
// the zero value; the joined error reports all of them.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// protect invokes fn converting a panic into a *PanicError.
func protect(i int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// RetryConfig controls Retry.
type RetryConfig struct {
	// Attempts is the maximum number of calls (min 1).
	Attempts int
	// BaseDelay is the delay after the first failure; each subsequent
	// delay doubles up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps every delay, jitter included (0 = no cap).
	MaxDelay time.Duration
	// Jitter in [0, 1] scales each delay by a uniform factor in
	// [1, 1+Jitter], decorrelating retries across workers. Jitter only
	// ever lengthens a delay: attempt n sleeps within
	// [BaseDelay·2ⁿ, BaseDelay·(1+Jitter)·2ⁿ], capped at MaxDelay, so
	// the configured base remains a hard lower bound on backoff.
	Jitter float64
	// sleep overrides the context-aware backoff sleep in tests.
	sleep func(time.Duration)
}

// DefaultRetry retries 4 times starting at 50 ms with full doubling and
// 20% jitter.
func DefaultRetry() RetryConfig {
	return RetryConfig{Attempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

var jitterMu sync.Mutex
var jitterRNG = rand.New(rand.NewSource(1))

func jitterFactor(j float64) float64 {
	if j <= 0 {
		return 1
	}
	jitterMu.Lock()
	u := jitterRNG.Float64()
	jitterMu.Unlock()
	return 1 + j*u
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first, so
// a cancelled caller is not held hostage by a long backoff.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Retry calls op until it succeeds, Attempts are exhausted, or ctx is
// done, sleeping an exponentially growing, jittered delay between calls.
// Panics inside op are recovered and treated as failures. The final error
// wraps the last failure (or the context error when cancelled).
func Retry(ctx context.Context, cfg RetryConfig, op func() error) error {
	attempts := cfg.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := cfg.sleep
	if sleep == nil {
		sleep = func(d time.Duration) { sleepCtx(ctx, d) }
	}
	delay := cfg.BaseDelay
	var last error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("resilience: retry cancelled after %d attempts: %w", a, err)
		}
		last = protect(a, op)
		if last == nil {
			return nil
		}
		if a+1 < attempts && delay > 0 {
			d := time.Duration(float64(delay) * jitterFactor(cfg.Jitter))
			if cfg.MaxDelay > 0 && d > cfg.MaxDelay {
				d = cfg.MaxDelay
			}
			sleep(d)
			delay *= 2
			if cfg.MaxDelay > 0 && delay > cfg.MaxDelay {
				delay = cfg.MaxDelay
			}
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", attempts, last)
}

// ErrWatchdogTimeout reports that a guarded operation overran its deadline.
var ErrWatchdogTimeout = errors.New("resilience: watchdog deadline exceeded")

// Watchdog runs op with a context cancelled after d and returns op's
// error, or ErrWatchdogTimeout if op has not returned by the deadline. A
// well-behaved op observes ctx and exits promptly; one that ignores it is
// abandoned on its goroutine (its eventual result is discarded), so the
// caller regains control either way. Panics inside op surface as errors.
func Watchdog(ctx context.Context, d time.Duration, op func(ctx context.Context) error) error {
	wctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- protect(0, func() error { return op(wctx) })
	}()
	select {
	case err := <-done:
		return err
	case <-wctx.Done():
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w (after %v)", ErrWatchdogTimeout, d)
	}
}
