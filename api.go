// Package streamcoarsen is the public API of this repository: a
// reproduction of "Generalizable Reinforcement Learning-Based Coarsening
// Model for Resource Allocation over Large and Diverse Stream Processing
// Graphs" (IPDPS 2023).
//
// The package re-exports the pieces a downstream user composes:
//
//   - Graph / Node / Edge / Placement — the stream-processing DAG model
//     (internal/stream);
//   - Cluster and Simulate — the throughput simulator standing in for
//     CEPSim (internal/sim);
//   - Model / Pipeline — the edge-collapsing coarsening model and the
//     coarsening–partitioning framework (internal/core);
//   - Trainer — REINFORCE training with Metis-guided cold start and
//     curriculum levels (internal/rl);
//   - MetisPlacer / MetisOraclePlacer — the multilevel partitioner
//     (internal/metis, internal/placer);
//   - GenerateGraphs and the experiment Settings (internal/gen);
//   - Harness — the evaluation harness regenerating the paper's tables
//     and figures (internal/eval).
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	cluster := streamcoarsen.DefaultCluster(10, 1000)
//	setting := streamcoarsen.MediumSetting()
//	data := setting.Generate()
//	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
//	pipe := streamcoarsen.NewPipeline(model)
//	trainer := streamcoarsen.NewTrainer(streamcoarsen.DefaultTrainConfig(), model, pipe)
//	trainer.TrainOn(data.Train, cluster)
//	alloc := pipe.Allocate(data.Test[0], cluster)
package streamcoarsen

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/placer"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/stream"
)

// Graph model re-exports.
type (
	// Graph is a stream-processing DAG of operators.
	Graph = stream.Graph
	// Node is one operator (instructions/tuple, payload, selectivity).
	Node = stream.Node
	// Edge is a directed operator connection carrying tuples.
	Edge = stream.Edge
	// Placement maps operators to devices.
	Placement = stream.Placement
	// CoarseMap maps operators to super-nodes after edge collapsing.
	CoarseMap = stream.CoarseMap
)

// Simulator re-exports.
type (
	// Cluster describes the computing environment.
	Cluster = sim.Cluster
	// SimResult is a simulated steady state.
	SimResult = sim.Result
)

// Core framework re-exports.
type (
	// Model is the edge-collapsing coarsening model (the paper's
	// contribution).
	Model = core.Model
	// ModelConfig sets the model's dimensions.
	ModelConfig = core.Config
	// Pipeline is the coarsening–partitioning framework.
	Pipeline = core.Pipeline
	// Allocation is one end-to-end allocation result.
	Allocation = core.Allocation
	// MultilevelConfig controls recursive multilevel allocation.
	MultilevelConfig = core.MultilevelConfig
	// Decision is a per-edge collapse decision vector.
	Decision = core.Decision
	// Placer is the partitioning-model interface.
	Placer = placer.Placer
	// Trainer trains the model with REINFORCE (§III).
	Trainer = rl.Trainer
	// TrainConfig controls training.
	TrainConfig = rl.Config
	// CurriculumLevel is one stage of size-based curriculum training.
	CurriculumLevel = rl.Level
)

// Dataset re-exports.
type (
	// Setting is one experimental configuration from §V.
	Setting = gen.Setting
	// Dataset is a generated train/test split.
	Dataset = gen.Dataset
	// GenConfig controls synthetic graph generation (Fig. 4).
	GenConfig = gen.Config
)

// Evaluation re-exports.
type (
	// Harness regenerates the paper's tables and figures.
	Harness = eval.Harness
	// Budget sets the harness's training effort.
	Budget = eval.Budget
)

// NewGraph returns an empty graph with the given source tuple rate.
func NewGraph(sourceRate float64) *Graph { return stream.NewGraph(sourceRate) }

// DefaultCluster returns the paper's environment: devices of 1.25e3 MIPS
// with links of the given Mbps.
func DefaultCluster(devices int, mbps float64) Cluster { return sim.DefaultCluster(devices, mbps) }

// Simulate computes the steady-state throughput of a placement.
func Simulate(g *Graph, p *Placement, c Cluster) (SimResult, error) { return sim.Simulate(g, p, c) }

// Reward returns the relative throughput r = T/I of a placement.
func Reward(g *Graph, p *Placement, c Cluster) float64 { return sim.Reward(g, p, c) }

// DefaultMultilevelConfig returns the default recursion bounds for
// Pipeline.AllocateMultilevel.
func DefaultMultilevelConfig() MultilevelConfig { return core.DefaultMultilevelConfig() }

// DefaultModelConfig returns the CPU-scale model configuration.
func DefaultModelConfig() ModelConfig { return core.DefaultConfig() }

// NewModel constructs a coarsening model.
func NewModel(cfg ModelConfig) *Model { return core.New(cfg) }

// NewPipeline wraps a model with the Metis partitioner — the paper's best
// configuration (Coarsen+Metis).
func NewPipeline(m *Model) *Pipeline {
	return &Pipeline{Model: m, Placer: placer.Metis{Seed: 1}}
}

// NewPipelineWith wraps a model with a custom partitioning stage.
func NewPipelineWith(m *Model, p Placer) *Pipeline {
	return &Pipeline{Model: m, Placer: p}
}

// DefaultTrainConfig returns the paper-shaped training configuration.
func DefaultTrainConfig() TrainConfig { return rl.DefaultConfig() }

// NewTrainer builds a REINFORCE trainer for the model/pipeline pair.
func NewTrainer(cfg TrainConfig, m *Model, p *Pipeline) *Trainer { return rl.NewTrainer(cfg, m, p) }

// MetisPlacer returns the multilevel partitioner as a placement stage.
func MetisPlacer(seed int64) Placer { return placer.Metis{Seed: seed} }

// MetisOraclePlacer returns the device-count-sweeping oracle variant.
func MetisOraclePlacer(seed int64) Placer { return placer.MetisOracle{Seed: seed} }

// MetisPartition partitions a graph directly (the non-learned baseline).
func MetisPartition(g *Graph, parts int, seed int64) *Placement {
	return metis.Partition(g, metis.Options{Parts: parts, Seed: seed})
}

// Experiment settings from §V.
func SmallSetting() Setting    { return gen.Small() }
func Medium5KSetting() Setting { return gen.Medium5K() }
func MediumSetting() Setting   { return gen.Medium() }
func LargeSetting() Setting    { return gen.Large() }
func XLargeSetting() Setting   { return gen.XLarge() }
func HugeSetting() Setting     { return gen.Huge() }
func ExtremeSetting() Setting  { return gen.Extreme() }
func ExcessSetting() Setting   { return gen.Excess() }

// AllSettings lists every preset in evaluation order.
func AllSettings() []Setting { return gen.AllSettings() }

// NewHarness builds the experiment harness; scale multiplies dataset
// sizes (1 = preset sizes).
func NewHarness(scale float64, budget Budget) *Harness { return eval.NewHarness(scale, budget) }

// DefaultBudget is the full-run training budget; QuickBudget suits tests.
func DefaultBudget() Budget { return eval.DefaultBudget() }

// QuickBudget is a seconds-scale training budget.
func QuickBudget() Budget { return eval.QuickBudget() }
