GO ?= go

.PHONY: build test check race vet bench

build:
	$(GO) build ./...

# Tier-1 gate: the repo must always pass this.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge check: vet + race-detected tests.
check: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
