GO ?= go
BENCH_OUT ?= BENCH_1

.PHONY: build test check race vet bench bench-smoke

build:
	$(GO) build ./...

# Tier-1 gate: the repo must always pass this.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches benchmarks that panic or
# regress into non-termination without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .

# Full pre-merge check: vet + race-detected tests + benchmark smoke run.
check: vet race bench-smoke

# Measured benchmark run. Writes the raw benchstat-consumable text to
# $(BENCH_OUT).txt and a structured JSON report (same data, plus the raw
# lines) to $(BENCH_OUT).json. Compare two runs with:
#   make bench BENCH_OUT=before ... make bench BENCH_OUT=after
#   benchstat before.txt after.txt
bench:
	$(GO) test -bench=. -benchmem -run=^$$ . | tee $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson $(BENCH_OUT).txt > $(BENCH_OUT).json
