GO ?= go
BENCH_OUT ?= BENCH_2

# Regression-gate knobs: the stable micro set measured by bench-gate, the
# committed baseline it compares against, and the per-metric threshold in
# percent (applies to ns/op, allocs/op and — for benchmarks with MxKxN dims
# in the name — GFLOP/s; min-of-count filters noise).
BENCH_FILTER ?= 'BenchmarkGNNEncode|BenchmarkMatMul$$|BenchmarkMetisPartition|BenchmarkCoarsenAllocate|BenchmarkSimulate$$|BenchmarkTrainEpoch|BenchmarkServe'
BENCH_BASELINE ?= BENCH_BASELINE.json
BENCH_THRESHOLD ?= 10

# Fixed heap target for measured benchmark runs. The huge (~100k-node)
# encode benchmark recycles hundreds of MB through the tensor arena, and
# without a pinned GOMEMLIMIT its B/op numbers swing with whatever heap
# size the previous tests left behind.
BENCH_MEMLIMIT ?= 2GiB

.PHONY: build test check race vet fmt lint bench bench-smoke bench-gate bench-baseline bench-huge bench-kernels benchdiff curve chaos serve-smoke serve-bench

build:
	$(GO) build ./...

# Tier-1 gate: the repo must always pass this.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Formatting gate: fail when any tracked Go file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static gate: formatting + vet in one target.
lint: fmt vet

race:
	$(GO) test -race ./...

# Chaos gate: the fault-injection, drift re-allocation, and resilience
# suites under the race detector, twice, so flaky timing in the wall-clock
# controllers or a data race in the re-allocation loop fails loudly.
chaos:
	$(GO) test -race -count=2 ./internal/runtime/ ./internal/realloc/ ./internal/resilience/

# One iteration of every benchmark: catches benchmarks that panic or
# regress into non-termination without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .

# Observability smoke: a tiny seeded training run must emit a parseable
# JSONL training curve with strictly increasing steps (curvecheck exits
# non-zero otherwise).
curve:
	$(GO) run ./cmd/coarsenrl -mode train -setting small -scale 0.1 \
		-pretrain 0 -epochs 1 -quiet -curve-out .curve.jsonl
	$(GO) run ./cmd/curvecheck .curve.jsonl

# Serving smoke: boot the real allocserve wiring on :0, allocate a
# generated graph over HTTP (cold + cached), hot-swap via /reload,
# scrape /metrics, and drive the overload path (429 + Retry-After +
# recovery, access log, trace spans).
serve-smoke:
	$(GO) test -count=1 -run 'TestAllocServeSmoke|TestAllocServeShedding' ./cmd/allocserve/

# Serving regression bench: the end-to-end service benchmarks (cold and
# cached paths under 1/8/64 concurrent clients) diffed against the
# committed baseline.
serve-bench:
	$(GO) test -run=NONE -bench=BenchmarkServe -benchmem -count=3 . > .bench_serve.txt
	$(GO) run ./cmd/benchjson .bench_serve.txt > .bench_serve.json
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_THRESHOLD) $(BENCH_BASELINE) .bench_serve.json

# Full pre-merge check: lint (formatting + vet) + race-detected tests +
# chaos suites + benchmark smoke run + observability smoke + serving
# smoke + huge-graph scaling gate + regression gate against the
# committed baseline.
check: lint race chaos bench-smoke curve serve-smoke bench-huge bench-gate

# Regression gate: measure the stable micro set (min of -count=3) and fail
# when any benchmark regressed more than BENCH_THRESHOLD percent in ns/op,
# B/op or allocs/op relative to the committed baseline.
bench-gate:
	GOMEMLIMIT=$(BENCH_MEMLIMIT) $(GO) test -run=NONE -bench=$(BENCH_FILTER) -benchmem -count=3 . > .bench_gate.txt
	$(GO) run ./cmd/benchjson .bench_gate.txt > .bench_gate.json
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_THRESHOLD) $(BENCH_BASELINE) .bench_gate.json

# Scaling gate: the ~100k-node layered-graph encode alone, under the pinned
# GOMEMLIMIT, diffed against the committed baseline. Fast to iterate on
# when only large-graph behaviour changed (bench-gate measures it too).
bench-huge:
	GOMEMLIMIT=$(BENCH_MEMLIMIT) $(GO) test -run=NONE -bench='BenchmarkGNNEncode/huge' -benchmem -count=3 . > .bench_huge.txt
	$(GO) run ./cmd/benchjson .bench_huge.txt > .bench_huge.json
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_THRESHOLD) $(BENCH_BASELINE) .bench_huge.json

# Refresh the committed gate baseline (run on a quiet machine, then commit).
bench-baseline:
	GOMEMLIMIT=$(BENCH_MEMLIMIT) $(GO) test -run=NONE -bench=$(BENCH_FILTER) -benchmem -count=3 . > .bench_gate.txt
	$(GO) run ./cmd/benchjson .bench_gate.txt > $(BENCH_BASELINE)

# Compute-kernel microbenchmarks with GFLOP/s: the blocked MatMul variants
# plus the transposed/fused kernels behind the autodiff tape ops.
bench-kernels:
	$(GO) test -run=NONE -bench='BenchmarkMatMul$$|BenchmarkKernels' -benchmem -count=3 . | tee .bench_kernels.txt
	$(GO) run ./cmd/benchjson .bench_kernels.txt > .bench_kernels.json

# Ad-hoc comparison of two recorded JSON reports:
#   make benchdiff BENCH_PREV=BENCH_1.json BENCH_NEW=BENCH_2.json
BENCH_PREV ?= BENCH_1.json
BENCH_NEW ?= BENCH_2.json
benchdiff:
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_THRESHOLD) $(BENCH_PREV) $(BENCH_NEW)

# Measured benchmark run. Writes the raw benchstat-consumable text to
# $(BENCH_OUT).txt and a structured JSON report (same data, plus the raw
# lines) to $(BENCH_OUT).json. Compare two runs with:
#   make bench BENCH_OUT=before ... make bench BENCH_OUT=after
#   benchstat before.txt after.txt
bench:
	$(GO) test -bench=. -benchmem -run=^$$ . | tee $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson $(BENCH_OUT).txt > $(BENCH_OUT).json
