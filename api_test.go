package streamcoarsen

import (
	"testing"
)

// TestEndToEndPipeline is the integration test across the whole stack:
// generate → train (imitation + REINFORCE) → allocate → simulate, checking
// the headline property that the trained pipeline is never worse than the
// Metis baseline on the test split (the ranked sweep contains the
// no-coarsening candidate) and strictly better somewhere.
func TestEndToEndPipeline(t *testing.T) {
	setting := Medium5KSetting()
	setting.TrainN, setting.TestN = 8, 6
	setting.Config.MinNodes, setting.Config.MaxNodes = 60, 100
	data := setting.Generate()
	cluster := data.Cluster

	model := NewModel(DefaultModelConfig())
	pipe := NewPipeline(model)
	cfg := DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs, cfg.Quiet = 10, 2, true
	NewTrainer(cfg, model, pipe).TrainOn(data.Train, cluster)

	better := 0
	for i, g := range data.Test {
		mp := MetisPartition(g, cluster.Devices, 1)
		mp.Devices = cluster.Devices
		metisR := Reward(g, mp, cluster)

		alloc := pipe.Allocate(g, cluster)
		if err := alloc.Placement.Validate(g); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		ourR := Reward(g, alloc.Placement, cluster)
		if ourR < metisR-1e-12 {
			t.Fatalf("graph %d: coarsen %.4f < metis %.4f", i, ourR, metisR)
		}
		if ourR > metisR+1e-9 {
			better++
		}
	}
	if better == 0 {
		t.Fatal("trained pipeline never beat Metis on any test graph")
	}
}

func TestFacadeSettingsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, s := range AllSettings() {
		names[s.Name] = true
	}
	for _, s := range []Setting{
		SmallSetting(), Medium5KSetting(), MediumSetting(),
		LargeSetting(), XLargeSetting(), ExcessSetting(),
	} {
		if !names[s.Name] {
			t.Fatalf("setting %q missing from AllSettings", s.Name)
		}
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := NewGraph(1000)
	a := g.AddNode(Node{IPT: 100, Payload: 10})
	b := g.AddNode(Node{IPT: 100, Payload: 10})
	g.AddEdge(a, b, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultCluster(2, 100)
	p := MetisPartition(g, 2, 1)
	p.Devices = 2
	res, err := Simulate(g, p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relative <= 0 || res.Relative > 1 {
		t.Fatalf("relative = %g", res.Relative)
	}
}

func TestFacadePlacers(t *testing.T) {
	setting := SmallSetting()
	setting.TestN = 2
	data := setting.Generate()
	for _, pl := range []Placer{MetisPlacer(1), MetisOraclePlacer(1)} {
		p := pl.Place(data.Test[0], data.Cluster)
		if err := p.Validate(data.Test[0]); err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
	}
}

func TestFacadeHarnessQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	h := NewHarness(0.06, QuickBudget())
	h.Quiet = true
	var sink discard
	h.Out = &sink
	if err := h.Run("fig9"); err != nil {
		t.Fatal(err)
	}
}

type discard struct{}

func (*discard) Write(p []byte) (int, error) { return len(p), nil }
