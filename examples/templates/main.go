// Command templates allocates the library's hand-modelled real-world
// application topologies (wordcount, log analytics, fraud detection, IoT
// monitoring) with a coarsening model trained only on synthetic graphs —
// the zero-shot transfer the paper highlights — and prints per-application
// throughput and estimated end-to-end latency for Metis vs the pipeline.
package main

import (
	"fmt"
	"math/rand"

	streamcoarsen "repro"
	"repro/internal/gen"
	"repro/internal/sim"
)

func main() {
	cluster := streamcoarsen.DefaultCluster(5, 200)

	// Train on synthetic graphs only.
	setting := streamcoarsen.Medium5KSetting()
	setting.TrainN = 12
	setting.Cluster = cluster
	setting.Config.Cluster = cluster
	data := setting.Generate()
	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
	pipe := streamcoarsen.NewPipeline(model)
	cfg := streamcoarsen.DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs, cfg.Quiet = 10, 2, true
	streamcoarsen.NewTrainer(cfg, model, pipe).TrainOn(data.Train, cluster)

	fmt.Printf("%-18s %6s | %-22s | %-22s\n", "application", "ops", "metis", "coarsen+metis (0-shot)")
	rng := rand.New(rand.NewSource(7))
	for _, tpl := range gen.AllTemplates() {
		g, err := gen.FromTemplate(tpl, 6, 5_000, rng)
		if err != nil {
			panic(err)
		}
		mp := streamcoarsen.MetisPartition(g, cluster.Devices, 1)
		mp.Devices = cluster.Devices
		mr := streamcoarsen.Reward(g, mp, cluster)
		mlat, _ := sim.EstimateLatency(g, mp, cluster)

		alloc := pipe.Allocate(g, cluster)
		cr := streamcoarsen.Reward(g, alloc.Placement, cluster)
		clat, _ := sim.EstimateLatency(g, alloc.Placement, cluster)

		fmt.Printf("%-18s %6d | %5.0f/s %7.1fms lat | %5.0f/s %7.1fms lat\n",
			tpl, g.NumNodes(),
			mr*g.SourceRate, 1000*mlat.CriticalPathSeconds,
			cr*g.SourceRate, 1000*clat.CriticalPathSeconds)
	}
}
