// Command telemetry allocates a hand-built, realistically shaped stream
// application — a vehicle-telemetry analytics pipeline of the kind the
// paper's introduction motivates (transportation/telecommunication) — and
// compares Metis's direct partition with the coarsening–partitioning
// pipeline. It also prints Graphviz DOT renderings of both placements.
package main

import (
	"fmt"
	"os"

	streamcoarsen "repro"
)

// buildTelemetryPipeline assembles the application DAG:
//
//	ingest → parse → {enrich-gps, enrich-engine, enrich-driver}
//	       → join → window-agg → {anomaly-detect, fuel-model}
//	       → alert-sink / dashboard-sink
//
// Per-tuple instruction counts and payloads are chosen so the heavy
// parse→enrich and join→window edges dominate communication — collapsing
// them is what a good coarsening should discover.
func buildTelemetryPipeline(rate float64) *streamcoarsen.Graph {
	g := streamcoarsen.NewGraph(rate)
	add := func(name string, ipt, payload, sel float64) int {
		return g.AddNode(streamcoarsen.Node{Name: name, IPT: ipt, Payload: payload, Selectivity: sel})
	}
	ingest := add("ingest", 2e4, 4e4, 1)
	parse := add("parse", 8e4, 6e4, 1)
	gps := add("enrich-gps", 5e4, 2e4, 1)
	engine := add("enrich-engine", 6e4, 2e4, 1)
	driver := add("enrich-driver", 4e4, 1.5e4, 1)
	join := add("join", 1.2e5, 8e4, 0.33)
	window := add("window-agg", 1.5e5, 3e4, 0.5)
	anomaly := add("anomaly-detect", 9e4, 4e3, 1)
	fuel := add("fuel-model", 7e4, 5e3, 1)
	alert := add("alert-sink", 1e4, 0, 1)
	dash := add("dashboard-sink", 1e4, 0, 1)

	g.AddEdge(ingest, parse, 0)
	g.AddEdge(parse, gps, 0)
	g.AddEdge(parse, engine, 0)
	g.AddEdge(parse, driver, 0)
	g.AddEdge(gps, join, 0)
	g.AddEdge(engine, join, 0)
	g.AddEdge(driver, join, 0)
	g.AddEdge(join, window, 0)
	g.AddEdge(window, anomaly, 0)
	g.AddEdge(window, fuel, 0)
	g.AddEdge(anomaly, alert, 0)
	g.AddEdge(fuel, dash, 0)
	g.AddEdge(anomaly, dash, 0)
	return g
}

func main() {
	cluster := streamcoarsen.DefaultCluster(4, 100) // 4 devices, 100 Mbps links
	g := buildTelemetryPipeline(8_000)
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid pipeline:", err)
		os.Exit(1)
	}
	fmt.Printf("telemetry pipeline: %d operators, %d streams\n", g.NumNodes(), g.NumEdges())

	// Plain Metis partition across all 4 devices.
	mp := streamcoarsen.MetisPartition(g, cluster.Devices, 1)
	mp.Devices = cluster.Devices
	mres, err := streamcoarsen.Simulate(g, mp, cluster)
	if err != nil {
		panic(err)
	}
	fmt.Printf("metis:         %6.0f tuples/s (%.0f%% of source, bottleneck %v, %d devices)\n",
		mres.Throughput, 100*mres.Relative, mres.Bottleneck, mp.UsedDevices())

	// Train a small coarsening model on synthetic graphs with a similar
	// cluster, then allocate the real pipeline — exactly the trained-once,
	// deploy-anywhere flow the paper targets.
	setting := streamcoarsen.SmallSetting()
	setting.TrainN = 12
	setting.Cluster = cluster
	setting.Config.Cluster = cluster
	data := setting.Generate()

	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
	pipe := streamcoarsen.NewPipeline(model)
	cfg := streamcoarsen.DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs, cfg.Quiet = 8, 2, true
	streamcoarsen.NewTrainer(cfg, model, pipe).TrainOn(data.Train, cluster)

	alloc := pipe.Allocate(g, cluster)
	cres, err := streamcoarsen.Simulate(g, alloc.Placement, cluster)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coarsen+metis: %6.0f tuples/s (%.0f%% of source, bottleneck %v, %d devices, %d super-nodes)\n",
		cres.Throughput, 100*cres.Relative, cres.Bottleneck,
		alloc.Placement.UsedDevices(), alloc.Coarse.NumSuper)

	// Emit DOT renderings for inspection (dot -Tpng metis.dot -o metis.png).
	if err := os.WriteFile("telemetry_metis.dot", []byte(g.DOT(mp)), 0o644); err == nil {
		fmt.Println("wrote telemetry_metis.dot")
	}
	if err := os.WriteFile("telemetry_coarsen.dot", []byte(g.DOT(alloc.Placement)), 0o644); err == nil {
		fmt.Println("wrote telemetry_coarsen.dot")
	}
}
