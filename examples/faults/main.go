// Command faults demonstrates the chaos-injected concurrent runtime: it
// builds a small stream application, places it with Metis, and measures
// throughput under an escalating fault schedule — clean, one device crash,
// two crashes, and a degraded-then-flapping cross-device link.
//
// Real stream-processing clusters lose workers and links mid-run; a
// placement is only as good as the throughput it retains when that
// happens. The FaultPlan below is read-only to the runtime's hot path, so
// the faulted runs exercise exactly the same scheduler, batching, and
// credit handshakes as the clean one.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/metis"
	"repro/internal/runtime"
	"repro/internal/sim"
)

func main() {
	// A small generated workload: a handful of operators per graph, five
	// devices, 1 Gbps links — enough contention that faults actually bite.
	setting := gen.Small()
	setting.TestN = 1
	ds := setting.Generate()
	g := ds.Test[0]
	cluster := ds.Cluster

	p := metis.Partition(g, metis.Options{Parts: cluster.Devices, Seed: 1})
	p.Devices = cluster.Devices

	cfg := runtime.DefaultConfig()
	cfg.WallTime = 400 * time.Millisecond
	cfg.WarmupFrac = 0.25

	crash := func(dev int, at time.Duration) runtime.DeviceFault {
		return runtime.DeviceFault{Device: dev, At: at, Duration: 60 * time.Millisecond}
	}
	scenarios := []struct {
		name string
		plan *runtime.FaultPlan
	}{
		{"clean (no faults)", nil},
		{"1 device crash", &runtime.FaultPlan{
			Devices: []runtime.DeviceFault{crash(0, 120*time.Millisecond)},
		}},
		{"2 device crashes", &runtime.FaultPlan{
			Devices: []runtime.DeviceFault{
				crash(0, 120*time.Millisecond),
				crash(1, 190*time.Millisecond),
			},
		}},
		{"link degraded 5x + flap", &runtime.FaultPlan{
			Links: []runtime.LinkFault{
				// Device 0's links run at 20% bandwidth for the whole
				// window, with a total outage (factor 0) mid-run.
				{Device: 0, At: 0, Duration: cfg.WallTime, Factor: 0.2},
				{Device: 0, At: 200 * time.Millisecond, Duration: 60 * time.Millisecond, Factor: 0},
			},
		}},
	}

	fmt.Printf("graph: %d operators, %.0f tuples/s source, %d devices\n\n",
		g.NumNodes(), g.SourceRate, cluster.Devices)
	fmt.Printf("%-26s %10s %10s %9s %9s %8s\n",
		"scenario", "relative", "retained", "crashes", "restarts", "retunes")

	var baseline float64
	for i, sc := range scenarios {
		cfg.Faults = sc.plan
		r, err := runtime.Run(g, p, cluster, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %s: %v\n", sc.name, err)
			os.Exit(1)
		}
		if i == 0 {
			baseline = r.Relative
		}
		retained := 1.0
		if baseline > 0 {
			retained = r.Relative / baseline
		}
		// Fault columns are the runtime's measured injection counts
		// (runtime.Result), not the plan re-tallied: a fault the run never
		// reached shows up as zero here.
		fmt.Printf("%-26s %10.3f %9.0f%% %9d %9d %8d\n",
			sc.name, r.Relative, retained*100, r.DeviceCrashes, r.DeviceRestarts, r.LinkRetunes)
	}

	// Drift goes beyond faults: the same run can see source-rate surges,
	// pool grow/shrink, and link class changes, expressed as the same
	// sim.DriftEvent timeline the deterministic experiments replay. Here
	// the event list is compiled onto the wall clock at 25 ms per tick: a
	// 1.8× surge over ticks [4,10), device 1 out from tick 6 on, and a
	// half-bandwidth link class from tick 8.
	events := []sim.DriftEvent{
		{Kind: sim.DriftSourceSurge, Tick: 4, DurTicks: 6, Factor: 1.8},
		{Kind: sim.DriftDeviceLoss, Tick: 6, Device: 1},
		{Kind: sim.DriftLinkClass, Tick: 8, Factor: 0.5},
	}
	dp, err := runtime.PlanFromEvents(events, cluster.Devices, 25*time.Millisecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faults: drift plan: %v\n", err)
		os.Exit(1)
	}
	cfg.Faults = nil
	cfg.Drift = dp
	r, err := runtime.Run(g, p, cluster, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faults: drift run: %v\n", err)
		os.Exit(1)
	}
	retained := 1.0
	if baseline > 0 {
		retained = r.Relative / baseline
	}
	fmt.Printf("\ndrift (surge+loss+class)   %10.3f %9.0f%%   crashes %d, link retunes %d, source retunes %d\n",
		r.Relative, retained*100, r.DeviceCrashes, r.LinkRetunes, r.SourceRetunes)

	fmt.Println("\nThe same degradation curve is available as an eval-harness")
	fmt.Println("experiment: internal/eval's Harness.Run(\"robustness\") — and the")
	fmt.Println("drift comparison (static vs reactive vs full re-coarsen) as")
	fmt.Println("Harness.Run(\"drift\").")
}
