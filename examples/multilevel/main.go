// Command multilevel walks through recursive multilevel allocation on
// graphs far larger than anything the model was trained on.
//
// One-shot coarsening (Pipeline.Allocate) ranks every edge with a single
// forward pass and contracts straight to device scale — at hundreds of
// thousands of nodes that one ranking decides everything, and the sweep's
// repeated full-graph simulations dominate wall clock. AllocateMultilevel
// instead coarsens a bounded factor per level, re-scoring each level's
// graph with a fresh forward pass, partitions at the coarsest level, and
// projects the placement back up with model-score-guided boundary
// refinement at every level (the classic Metis scheme, with the learned
// merge probability as both the matching heuristic and the refinement
// priority).
//
// The model here is pretrained only on medium graphs (100–200 nodes) —
// the paper's generalization story — and then allocates an unseen
// ~1,700-node graph both ways, followed by a ~100k-node graph from the
// huge setting through the multilevel driver. Everything is seeded, so
// the output is deterministic (see the expected output at the bottom).
package main

import (
	"fmt"

	streamcoarsen "repro"
)

func main() {
	// Pretrain the coarsening model on the medium setting only: a few
	// Metis-guided imitation epochs, no REINFORCE, so the example runs in
	// seconds. The point is size generalization, not peak reward.
	med := streamcoarsen.MediumSetting()
	med.TrainN, med.TestN = 8, 1
	data := med.Generate()

	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
	pipe := streamcoarsen.NewPipeline(model)
	cfg := streamcoarsen.DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs = 6, 0
	trainer := streamcoarsen.NewTrainer(cfg, model, pipe)
	trainer.TrainOn(data.Train, data.Cluster)

	// Part 1 — one-shot vs multilevel on an unseen graph an order of
	// magnitude past the training sizes: the xlarge setting (1,000–2,000
	// nodes, 20 devices). At this still-modest size a single ranking over
	// ~10k edges is well within one forward pass, so the two paths land
	// in the same ballpark; the comparison shows the mechanics.
	xl := streamcoarsen.XLargeSetting()
	xl.TrainN, xl.TestN = 1, 1
	g := xl.Generate().Test[0]
	cluster := xl.Cluster
	fmt.Printf("xlarge graph: %d nodes, %d edges, %d devices\n",
		g.NumNodes(), g.NumEdges(), cluster.Devices)

	flat := pipe.Allocate(g, cluster)
	flatR := streamcoarsen.Reward(g, flat.Placement, cluster)
	fmt.Printf("  one-shot   : %6d -> %5d supernodes   throughput %7.0f tuples/s\n",
		g.NumNodes(), flat.Coarse.NumSuper, flatR*g.SourceRate)

	// DefaultMultilevelConfig is what coarsenrl -multilevel uses; the
	// knobs are the leaf size handed to the flat pipeline, the per-level
	// coarsening factor, and the refinement sweeps per level.
	mcfg := streamcoarsen.DefaultMultilevelConfig()
	ml := pipe.AllocateMultilevel(g, cluster, mcfg)
	mlR := streamcoarsen.Reward(g, ml.Placement, cluster)
	fmt.Printf("  multilevel : %6d -> %5d supernodes   throughput %7.0f tuples/s\n",
		g.NumNodes(), ml.Coarse.NumSuper, mlR*g.SourceRate)
	fmt.Printf("  config: leaf %d, factor %d per level, %d refine passes\n",
		mcfg.LeafSize, mcfg.CoarsenFactor, mcfg.RefinePasses)

	// Part 2 — the scale the driver exists for: a ~100k-node graph from
	// the huge setting (layered O(E) construction, 32 devices), coarsened
	// recursively. Each level's forward pass scores a graph of bounded
	// size instead of squeezing 150k edge decisions through one ranking;
	// the first contraction alone takes 100k nodes down by the coarsening
	// factor. (One-shot at this size spends most of its time in the
	// ranking sweep's repeated full-graph simulations — try it.)
	h := streamcoarsen.HugeSetting()
	hg := h.Generate().Test[0]
	fmt.Printf("huge graph: %d nodes, %d edges, %d devices\n",
		hg.NumNodes(), hg.NumEdges(), h.Cluster.Devices)

	hml := pipe.AllocateMultilevel(hg, h.Cluster, mcfg)
	hR := streamcoarsen.Reward(hg, hml.Placement, h.Cluster)
	fmt.Printf("  multilevel : %6d -> %5d supernodes at level 1   throughput %7.0f tuples/s\n",
		hg.NumNodes(), hml.Coarse.NumSuper, hR*hg.SourceRate)
	devs := make(map[int]bool)
	for _, d := range hml.Placement.Assign {
		devs[d] = true
	}
	fmt.Printf("  placement  : %d operators on %d devices\n",
		len(hml.Placement.Assign), len(devs))
}

// Expected output (seeded end to end, so byte-identical across runs):
//
//	xlarge graph: 1733 nodes, 9760 edges, 20 devices
//	  one-shot   :   1733 ->   779 supernodes   throughput    2789 tuples/s
//	  multilevel :   1733 ->   600 supernodes   throughput    2636 tuples/s
//	  config: leaf 600, factor 8 per level, 2 refine passes
//	huge graph: 100205 nodes, 151389 edges, 32 devices
//	  multilevel : 100205 -> 12525 supernodes at level 1   throughput     884 tuples/s
//	  placement  : 100205 operators on 7 devices
//
// The coarsest-level partition concentrates load on a subset of the 32
// devices — a model pretrained on 10-device medium graphs has never seen
// a wide cluster, which is exactly the kind of gap REINFORCE fine-tuning
// at scale (ROADMAP: train the multilevel path) is meant to close.
//
// Runs in ~20 s, most of it the 100k-node recursion. See `coarsenrl
// -multilevel` for the CLI path and `make bench-huge` for the gated
// 100k-node encode benchmark.
