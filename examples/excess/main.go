// Command excess demonstrates the paper's excess-device setting (§V,
// Fig. 7): the cluster offers more devices than the workload needs, so a
// good allocator must pick a *subset* of devices — spreading across all of
// them wastes bandwidth on cross-device streams. The example compares
// Metis forced to use every device, the Metis oracle that sweeps device
// counts, and the coarsening pipeline, which discovers the device count
// implicitly through how far it coarsens.
package main

import (
	"fmt"

	streamcoarsen "repro"
)

func main() {
	setting := streamcoarsen.ExcessSetting()
	setting.TrainN, setting.TestN = 8, 6
	data := setting.Generate()
	cluster := data.Cluster
	fmt.Printf("excess-device setting: %d devices, %.0f Mbps links, graphs of %d-%d nodes\n",
		cluster.Devices, cluster.Bandwidth/1e6, setting.Config.MinNodes, setting.Config.MaxNodes)

	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
	pipe := streamcoarsen.NewPipeline(model)
	cfg := streamcoarsen.DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs, cfg.Quiet = 8, 2, true
	streamcoarsen.NewTrainer(cfg, model, pipe).TrainOn(data.Train, cluster)

	fmt.Printf("\n%-8s | %-22s | %-22s | %-22s\n", "graph",
		"metis (all devices)", "metis-oracle", "coarsen+metis")
	for i, g := range data.Test {
		mp := streamcoarsen.MetisPartition(g, cluster.Devices, 1)
		mp.Devices = cluster.Devices
		mr := streamcoarsen.Reward(g, mp, cluster)

		op := streamcoarsen.MetisOraclePlacer(1).Place(g, cluster)
		or := streamcoarsen.Reward(g, op, cluster)

		alloc := pipe.Allocate(g, cluster)
		cr := streamcoarsen.Reward(g, alloc.Placement, cluster)

		fmt.Printf("%-8d | %6.0f/s on %2d dev    | %6.0f/s on %2d dev    | %6.0f/s on %2d dev\n",
			i,
			mr*g.SourceRate, mp.UsedDevices(),
			or*g.SourceRate, op.UsedDevices(),
			cr*g.SourceRate, alloc.Placement.UsedDevices())
	}
	fmt.Println("\nThe coarsening pipeline converges on a device subset on its own;")
	fmt.Println("Metis must be told how many partitions to produce.")
}
