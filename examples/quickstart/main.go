// Command quickstart shows the smallest end-to-end use of the library:
// generate a dataset of synthetic stream graphs, train the edge-collapsing
// coarsening model with REINFORCE, and allocate an unseen graph, comparing
// against the Metis baseline.
package main

import (
	"fmt"

	streamcoarsen "repro"
)

func main() {
	// The paper's medium setting at 5K tuples/s on 5 devices, shrunk for a
	// quick demonstration.
	setting := streamcoarsen.Medium5KSetting()
	setting.TrainN, setting.TestN = 12, 6
	data := setting.Generate()
	cluster := data.Cluster

	fmt.Printf("dataset %q: %d train / %d test graphs, %d devices\n",
		data.Name, len(data.Train), len(data.Test), cluster.Devices)

	// Train the coarsening model: Metis-guided imitation for the cold
	// start, then REINFORCE on simulated throughput.
	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
	pipe := streamcoarsen.NewPipeline(model)
	cfg := streamcoarsen.DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs = 8, 2
	trainer := streamcoarsen.NewTrainer(cfg, model, pipe)
	trainer.TrainOn(data.Train, cluster)

	// Allocate every unseen test graph and compare with plain Metis.
	fmt.Printf("\n%-8s %-14s %-14s %-12s\n", "graph", "metis thr/s", "coarsen thr/s", "coarse size")
	for i, g := range data.Test {
		mp := streamcoarsen.MetisPartition(g, cluster.Devices, 1)
		mp.Devices = cluster.Devices
		metisR := streamcoarsen.Reward(g, mp, cluster)

		alloc := pipe.Allocate(g, cluster)
		ourR := streamcoarsen.Reward(g, alloc.Placement, cluster)

		fmt.Printf("%-8d %-14.0f %-14.0f %d -> %d nodes\n",
			i, metisR*g.SourceRate, ourR*g.SourceRate,
			g.NumNodes(), alloc.Coarse.NumSuper)
	}
}
