// Command heterogeneous demonstrates the paper's stated future-work
// extension, implemented here: allocation onto devices with *unequal*
// capacities. The Metis stage targets part weights proportional to device
// capacity, the simulator enforces per-device budgets, and the coarsening
// model — whose edge-collapsing decisions are capacity-agnostic by design
// — transfers to the heterogeneous cluster unchanged.
package main

import (
	"fmt"

	streamcoarsen "repro"
)

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func main() {
	// A 5-device cluster where one device is 4× the size of the others —
	// a big server plus small edge boxes.
	base := streamcoarsen.DefaultCluster(5, 1000)
	het := base.Heterogeneous([]float64{5e3, 1.25e3, 1.25e3, 1.25e3, 1.25e3})

	setting := streamcoarsen.Medium5KSetting()
	setting.TrainN, setting.TestN = 10, 8
	// Generate workloads calibrated against the heterogeneous capacity.
	setting.Cluster = het
	setting.Config.Cluster = het
	data := setting.Generate()

	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
	pipe := streamcoarsen.NewPipeline(model)
	cfg := streamcoarsen.DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs, cfg.Quiet = 8, 2, true
	streamcoarsen.NewTrainer(cfg, model, pipe).TrainOn(data.Train, het)

	var uniformR, capAwareR, coarsenR []float64
	for _, g := range data.Test {
		// Capacity-blind Metis: equal part targets on unequal devices.
		blind := streamcoarsen.MetisPartition(g, het.Devices, 1)
		blind.Devices = het.Devices
		uniformR = append(uniformR, streamcoarsen.Reward(g, blind, het))

		// Capacity-aware Metis (what the placer stage does automatically).
		aware := streamcoarsen.MetisPlacer(1).Place(g, het)
		capAwareR = append(capAwareR, streamcoarsen.Reward(g, aware, het))

		// Full coarsening pipeline.
		alloc := pipe.Allocate(g, het)
		coarsenR = append(coarsenR, streamcoarsen.Reward(g, alloc.Placement, het))
	}
	fmt.Printf("heterogeneous cluster (1×%.0f + 4×%.0f MIPS):\n", 5e3, 1.25e3)
	fmt.Printf("  capacity-blind metis:  mean relative throughput %.3f\n", mean(uniformR))
	fmt.Printf("  capacity-aware metis:  mean relative throughput %.3f\n", mean(capAwareR))
	fmt.Printf("  coarsen+metis:         mean relative throughput %.3f\n", mean(coarsenR))
}
