// Command transfer demonstrates the coarsening model's transferability
// (§VI-B, Fig. 6): a model trained once on medium graphs (100-200 nodes,
// 10 devices) is applied *directly* — no fine-tuning — to much larger
// unseen graphs on a different device count. Because edge-collapsing
// decisions have the same semantics at any scale (merge endpoints that
// communicate heavily and fit together), the learned policy keeps working
// where direct-placement models break down.
package main

import (
	"fmt"

	streamcoarsen "repro"
)

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func main() {
	// Train on medium graphs.
	trainSetting := streamcoarsen.MediumSetting()
	trainSetting.TrainN = 12
	trainData := trainSetting.Generate()

	model := streamcoarsen.NewModel(streamcoarsen.DefaultModelConfig())
	pipe := streamcoarsen.NewPipeline(model)
	cfg := streamcoarsen.DefaultTrainConfig()
	cfg.PretrainEpochs, cfg.Epochs = 8, 2
	fmt.Printf("training on %s (%d graphs, %d devices)...\n",
		trainData.Name, len(trainData.Train), trainData.Cluster.Devices)
	streamcoarsen.NewTrainer(cfg, model, pipe).TrainOn(trainData.Train, trainData.Cluster)

	// Evaluate zero-shot on large graphs with more devices.
	for _, evalSetting := range []streamcoarsen.Setting{
		streamcoarsen.LargeSetting(),
		streamcoarsen.XLargeSetting(),
	} {
		evalSetting.TestN = 4
		evalData := evalSetting.Generate()
		cluster := evalData.Cluster

		var metisR, ourR []float64
		for _, g := range evalData.Test {
			mp := streamcoarsen.MetisPartition(g, cluster.Devices, 1)
			mp.Devices = cluster.Devices
			metisR = append(metisR, streamcoarsen.Reward(g, mp, cluster))
			alloc := pipe.Allocate(g, cluster)
			ourR = append(ourR, streamcoarsen.Reward(g, alloc.Placement, cluster))
		}
		fmt.Printf("\nzero-shot on %s (%d devices):\n", evalData.Name, cluster.Devices)
		fmt.Printf("  metis          mean relative throughput %.3f\n", mean(metisR))
		fmt.Printf("  coarsen+metis  mean relative throughput %.3f\n", mean(ourR))
	}
}
